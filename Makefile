GO ?= go

.PHONY: check vet lint lint-test allow-gate fmt-check build test race benchsmoke benchcmp scale-smoke baseline-smoke par-smoke fuzz-smoke live-smoke conformance bench fmt

## check: the pre-PR gate. Run this before sending any change for review.
check: vet lint lint-test allow-gate fmt-check build test race benchsmoke benchcmp scale-smoke baseline-smoke par-smoke fuzz-smoke live-smoke
	@echo "check: all gates passed"

vet:
	$(GO) vet ./...

## lint: the repo's own analyzers (cmd/fdslint) — walltime, detmap,
## deliverretain, scratchalias, arenaescape, floatfold, stripshare,
## rngdraw — which machine-check the simulator's determinism, arena
## ownership, strip isolation, and message-lifetime invariants. Runs
## through `go vet -vettool`, so package loading, caching, and diagnostics
## follow vet conventions. See DESIGN.md "Determinism & lifetime
## invariants". `bin/fdslint -json ./...` / `-github` emit machine-readable
## findings.
lint:
	$(GO) build -o bin/fdslint ./cmd/fdslint
	$(GO) vet -vettool=bin/fdslint ./...

## lint-test: the analyzers' own test suite — every analyzer's
## firing/non-firing/suppression fixtures plus the lintest runner's
## self-tests. Separate from `test` so an analyzer regression is visible
## as its own gate.
lint-test:
	$(GO) test ./internal/lint/...

## allow-gate: the suppression budget. Policy since PR 5: zero
## //lint:allow in the tree — when an analyzer misfires, the analyzer is
## strengthened to prove the pattern safe, not waived. The pattern skips
## doc comments and string literals (no quote or slash may precede the
## directive on the line) and the fixture trees, where directives are the
## test subject.
allow-gate:
	@bad="$$(grep -rEn --include='*.go' '^[^"/]*//lint:allow' . | grep -v '/testdata/' || true)"; \
	if [ -n "$$bad" ]; then \
		echo "allow-gate: //lint:allow suppressions found (policy: zero — strengthen the analyzer instead):"; \
		echo "$$bad"; exit 1; fi; \
	echo "allow-gate: zero //lint:allow suppressions in the tree"

## fmt-check: fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the full tree under the race detector (kept affordable with
## -count=1; the heavy evaluation benchmarks are excluded by -run).
race:
	$(GO) test -race -count=1 ./...

## benchsmoke: one iteration of the serial/parallel Monte-Carlo benchmark
## pair — verifies the parallel path produces the same empirical rate and
## that the benchmarks still compile and run.
benchsmoke:
	$(GO) test -run '^$$' -bench 'MonteCarlo' -benchtime 1x -benchmem .

## benchcmp: the allocation-regression gate. Runs the alloc-sensitive
## benchmarks (FDSEpoch, RadioBroadcast, Codec, and the per-detector
## SWIM/QueryResponse/AllPairs epoch benchmarks) and fails if any allocs/op
## or B/op figure regresses more than 10% against the committed baseline
## (bench_baseline.json); ns/op deltas print as info lines but never gate
## (wall-clock is machine-dependent). When an optimization lowers a count,
## tighten the baseline in the same PR so the gate keeps biting.
## The scale benchmarks (FDSEpoch10k, ShardedEpoch, and the
## FDSEpochParallel serial-vs-parallel pair) run in a second invocation at
## -benchtime 1x: one iteration is seconds of simulation, and their
## allocation counts are deterministic at fixed seed regardless of
## iteration count. Both invocations feed one benchcmp run.
benchcmp:
	{ $(GO) test -run '^$$' -bench 'BenchmarkFDSEpoch$$|BenchmarkRadioBroadcast$$|BenchmarkCodec$$|BenchmarkSWIMEpoch$$|BenchmarkQueryResponseEpoch$$|BenchmarkAllPairsEpoch$$' \
		-benchtime 20x -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkFDSEpoch10k$$|BenchmarkShardedEpoch$$|BenchmarkFDSEpochParallel' \
		-benchtime 1x -benchmem . ; } | $(GO) run ./cmd/benchcmp -baseline bench_baseline.json

## scale-smoke: the sharded engine's cross-partition determinism gate at a
## scale the unit tests don't reach: a 10,000-host crash wave, run with 1
## shard and again with 4 shards x 2 workers, must print bit-identical trace
## and state hashes. See EXPERIMENTS.md "Sharded kernel".
scale-smoke:
	$(GO) build -o bin/fdsim ./cmd/fdsim
	@a="$$(bin/fdsim -shards 1 -nodes 10000 -field 2000 -crashes 25 -crash-epoch 1 -epochs 3 -seed 42 | grep 'hash:')"; \
	b="$$(bin/fdsim -shards 4 -shard-workers 2 -nodes 10000 -field 2000 -crashes 25 -crash-epoch 1 -epochs 3 -seed 42 | grep 'hash:')"; \
	echo "$$a"; \
	if [ "$$a" != "$$b" ]; then echo "scale-smoke: HASH MISMATCH between -shards 1 and -shards 4:"; echo "$$b"; exit 1; fi; \
	echo "scale-smoke: 1-shard and 4-shard hashes identical"

## baseline-smoke: the head-to-head matrix's determinism gate. A tiny
## all-detector sweep (every stack x every disruption scenario, 2 trials per
## cell) must print bit-identical "matrix hash:" lines with 1 worker and with
## 4 workers. See EXPERIMENTS.md "Head-to-head detector matrix".
baseline-smoke:
	$(GO) build -o bin/fdsfigs ./cmd/fdsfigs
	@a="$$(bin/fdsfigs -fig I -matrix-trials 2 -seed 42 -workers 1 | grep 'matrix hash:')"; \
	b="$$(bin/fdsfigs -fig I -matrix-trials 2 -seed 42 -workers 4 | grep 'matrix hash:')"; \
	echo "$$a"; \
	if [ "$$a" != "$$b" ]; then echo "baseline-smoke: HASH MISMATCH between -workers 1 and -workers 4:"; echo "$$b"; exit 1; fi; \
	echo "baseline-smoke: 1-worker and 4-worker matrix hashes identical"

## par-smoke: the intra-replica parallel engine's determinism gate at a
## scale the unit tests don't reach: a 300-node crash wave, run with
## -epoch-workers 1 and again with -epoch-workers 4, must print a
## bit-identical trace hash. See EXPERIMENTS.md "Intra-replica cluster
## parallelism".
par-smoke:
	$(GO) build -o bin/fdsim ./cmd/fdsim
	@a="$$(bin/fdsim -epoch-workers 1 -nodes 300 -field 900 -crashes 8 -crash-epoch 3 -epochs 8 -seed 42 | grep 'trace hash:')"; \
	b="$$(bin/fdsim -epoch-workers 4 -nodes 300 -field 900 -crashes 8 -crash-epoch 3 -epochs 8 -seed 42 | grep 'trace hash:')"; \
	echo "$$a"; \
	if [ "$$a" != "$$b" ]; then echo "par-smoke: HASH MISMATCH between -epoch-workers 1 and -epoch-workers 4:"; echo "$$b"; exit 1; fi; \
	echo "par-smoke: 1-worker and 4-worker trace hashes identical"

## fuzz-smoke: a short native-fuzz pass over the wire codec's two targets
## (FuzzDecode: Decode vs DecodeInto differential on hostile bytes;
## FuzzRoundTrip: decode -> encode fixed point). The committed corpus under
## internal/wire/testdata/fuzz/ always runs as plain seeds in `make test`;
## this target additionally mutates for 10s per target to probe new inputs.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime 10s

## live-smoke: the live-transport gate. A 3-node cluster of fdsd daemons on
## the in-process channel mesh (the deterministic core of the UDP path)
## forms, one node is crashed, and both survivors must detect it. Plus the
## differential conformance suite: the simulator and the mesh transport must
## produce bit-identical traces, wire bytes, states, and energy.
live-smoke:
	$(GO) test ./internal/daemon/ -run 'TestLiveSmokeCrashDetection' -count=1 -v
	$(GO) test ./internal/conformance/ -run 'TestSimAndMeshAreEquivalent' -count=1

## conformance: the full differential suite and transport-fault tests alone.
conformance:
	$(GO) test ./internal/conformance/ -count=1 -v

## bench: the full evaluation harness (slow; regenerates every figure).
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
