GO ?= go

.PHONY: check vet lint fmt-check build test race benchsmoke benchcmp bench fmt

## check: the pre-PR gate. Run this before sending any change for review.
check: vet lint fmt-check build test race benchsmoke benchcmp
	@echo "check: all gates passed"

vet:
	$(GO) vet ./...

## lint: the repo's own analyzers (cmd/fdslint) — walltime, detmap,
## deliverretain, scratchalias — which machine-check the simulator's
## determinism and message-lifetime invariants. Runs through `go vet
## -vettool`, so package loading, caching, and diagnostics follow vet
## conventions. See DESIGN.md "Determinism & lifetime invariants".
lint:
	$(GO) build -o bin/fdslint ./cmd/fdslint
	$(GO) vet -vettool=bin/fdslint ./...

## fmt-check: fails (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the full tree under the race detector (kept affordable with
## -count=1; the heavy evaluation benchmarks are excluded by -run).
race:
	$(GO) test -race -count=1 ./...

## benchsmoke: one iteration of the serial/parallel Monte-Carlo benchmark
## pair — verifies the parallel path produces the same empirical rate and
## that the benchmarks still compile and run.
benchsmoke:
	$(GO) test -run '^$$' -bench 'MonteCarlo' -benchtime 1x -benchmem .

## benchcmp: the allocation-regression gate. Runs the alloc-sensitive
## benchmarks (FDSEpoch, RadioBroadcast, Codec) and fails if any allocs/op
## figure regresses more than 10% against the committed baseline
## (bench_baseline.json). When an optimization lowers a count, tighten the
## baseline in the same PR so the gate keeps biting.
benchcmp:
	$(GO) test -run '^$$' -bench 'BenchmarkFDSEpoch$$|BenchmarkRadioBroadcast$$|BenchmarkCodec$$' \
		-benchtime 20x -benchmem . | $(GO) run ./cmd/benchcmp -baseline bench_baseline.json

## bench: the full evaluation harness (slow; regenerates every figure).
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
