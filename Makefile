GO ?= go

.PHONY: check vet build test race benchsmoke bench fmt

## check: the pre-PR gate. Run this before sending any change for review.
check: vet build test race benchsmoke
	@echo "check: all gates passed"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency-sensitive packages (the replication engine and
## everything ported onto it) under the race detector.
race:
	$(GO) test -race ./internal/replicate/ ./internal/montecarlo/

## benchsmoke: one iteration of the serial/parallel Monte-Carlo benchmark
## pair — verifies the parallel path produces the same empirical rate and
## that the benchmarks still compile and run.
benchsmoke:
	$(GO) test -run '^$$' -bench 'MonteCarlo' -benchtime 1x -benchmem .

## bench: the full evaluation harness (slow; regenerates every figure).
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
