// Package clusterfds is a full reproduction of "Cluster-Based Failure
// Detection Service for Large-Scale Ad Hoc Wireless Network Applications"
// (Tai, Tso, Sanders — DSN 2004): the cluster-formation algorithm, the
// three-round heartbeat/digest/update failure detection service, the
// gateway-based inter-cluster failure-report forwarding with implicit
// acknowledgments and backup-gateway assistance, a discrete-event wireless
// network simulator to run it all on, the paper's closed-form probabilistic
// analysis, and Monte-Carlo cross-validation of the two against each other.
//
// Start with README.md for the tour, DESIGN.md for the paper-to-code map,
// and EXPERIMENTS.md for the reproduced figures. The benchmark harness in
// bench_test.go regenerates every evaluation artifact:
//
//	go test -bench=. -benchmem
//
// The library lives under internal/; cmd/fdsim, cmd/fdsfigs, and
// cmd/fdstrace are the command-line entry points, and examples/ holds four
// runnable scenarios.
package clusterfds
