// Command fdslint runs the repository's determinism and message-lifetime
// analyzers (internal/lint/...) over Go packages.
//
// It speaks the `go vet -vettool` unit-checker protocol, so the canonical
// invocation delegates all package loading to the go command:
//
//	go vet -vettool=$(which fdslint) ./...
//
// For convenience it also accepts package patterns directly and re-execs
// go vet with itself as the vettool:
//
//	fdslint ./...
//
// The protocol has three entry points, matching x/tools' unitchecker:
//
//   - fdslint -V=full          print a version/buildID handshake line
//   - fdslint -flags           print the supported flags as JSON (none)
//   - fdslint <file>.cfg       analyze one package described by a JSON
//     config written by the go command
//
// Diagnostics are printed as file:line:col: message [analyzer]; the exit
// status is 2 when any diagnostic is reported, matching vet convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"clusterfds/internal/lint"
	"clusterfds/internal/lint/deliverretain"
	"clusterfds/internal/lint/detmap"
	"clusterfds/internal/lint/scratchalias"
	"clusterfds/internal/lint/walltime"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*lint.Analyzer{
	walltime.Analyzer,
	detmap.Analyzer,
	deliverretain.Analyzer,
	scratchalias.Analyzer,
}

func main() {
	args := os.Args[1:]

	// go vet handshake: version and flag discovery.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags; go vet requires valid JSON.
			fmt.Println("[]")
			return
		case "help", "-help", "--help", "-h":
			usage()
			return
		}
	}

	// Unit-checker mode: a single *.cfg argument from the go command.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}

	// Standalone mode: delegate package loading to go vet, with this
	// binary as the vettool.
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fdslint [package pattern...]\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which fdslint) [package pattern...]\n\n")
	fmt.Fprintf(os.Stderr, "Registered analyzers:\n\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppression: //lint:allow <analyzer> -- <justification>\n")
}

// printVersion emits the -V=full line the go command uses to fingerprint a
// vettool for build caching. The content hash of the executable stands in
// for a real build ID; any change to the binary invalidates cached results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", name, sum)
}

// runStandalone re-invokes go vet with this executable as the vettool.
func runStandalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
		return 1
	}
	return 0
}

// config mirrors the JSON schema the go command writes for a vettool, one
// file per package (see x/tools go/analysis/unitchecker).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnit analyzes the single package described by cfgPath and returns the
// process exit code.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
		return 1
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: cannot decode JSON config file %s: %v\n", cfgPath, err)
		return 1
	}

	// fdslint exports no facts, so the vetx output is always empty; write
	// it first so the go command can cache even a VetxOnly run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	unit, err := typecheck(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		diags, err := lint.Run(a, unit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdslint: %s: %v\n", a.Name, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", unit.Fset.Position(d.Pos), d.Message, a.Name)
			exit = 2
		}
	}
	return exit
}

// typecheck parses and type-checks the package described by cfg, resolving
// imports through the export data files the go command already built.
func typecheck(cfg *config) (*lint.Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
