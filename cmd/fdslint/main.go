// Command fdslint runs the repository's determinism and message-lifetime
// analyzers (internal/lint/...) over Go packages.
//
// It speaks the `go vet -vettool` unit-checker protocol, so the canonical
// invocation delegates all package loading to the go command:
//
//	go vet -vettool=$(which fdslint) ./...
//
// For convenience it also accepts package patterns directly and re-execs
// go vet with itself as the vettool:
//
//	fdslint ./...
//
// The protocol has three entry points, matching x/tools' unitchecker:
//
//   - fdslint -V=full          print a version/buildID handshake line
//   - fdslint -flags           print the supported flags as JSON (none)
//   - fdslint <file>.cfg       analyze one package described by a JSON
//     config written by the go command
//
// Diagnostics are printed as file:line:col: message [analyzer]; the exit
// status is 2 when any diagnostic is reported, matching vet convention.
//
// Standalone mode additionally supports two machine-readable formats:
//
//	fdslint -json ./...      a single JSON array of {file,line,col,analyzer,
//	                         message} objects on stdout, sorted by position
//	fdslint -github ./...    GitHub Actions ::error annotations, same order
//
// Both work by setting FDSLINT_FORMAT=json in the re-exec'd go vet's
// environment: each unit-checker child emits JSON-lines diagnostics on
// stderr, the parent collects and sorts them globally. The format variable
// is folded into the -V=full build ID so the vet result cache distinguishes
// plain from machine-readable runs.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"clusterfds/internal/lint"
	"clusterfds/internal/lint/arenaescape"
	"clusterfds/internal/lint/deliverretain"
	"clusterfds/internal/lint/detmap"
	"clusterfds/internal/lint/floatfold"
	"clusterfds/internal/lint/rngdraw"
	"clusterfds/internal/lint/scratchalias"
	"clusterfds/internal/lint/stripshare"
	"clusterfds/internal/lint/walltime"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*lint.Analyzer{
	walltime.Analyzer,
	detmap.Analyzer,
	deliverretain.Analyzer,
	scratchalias.Analyzer,
	arenaescape.Analyzer,
	floatfold.Analyzer,
	stripshare.Analyzer,
	rngdraw.Analyzer,
}

func main() {
	args := os.Args[1:]

	// go vet handshake: version and flag discovery.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags; go vet requires valid JSON.
			fmt.Println("[]")
			return
		case "help", "-help", "--help", "-h":
			usage()
			return
		}
	}

	// Unit-checker mode: a single *.cfg argument from the go command.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}

	// Standalone mode: delegate package loading to go vet, with this
	// binary as the vettool.
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fdslint [-json|-github] [package pattern...]\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which fdslint) [package pattern...]\n\n")
	fmt.Fprintf(os.Stderr, "  -json    print diagnostics as a sorted JSON array on stdout\n")
	fmt.Fprintf(os.Stderr, "  -github  print diagnostics as GitHub Actions ::error annotations\n\n")
	fmt.Fprintf(os.Stderr, "Registered analyzers:\n\n")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppression: //lint:allow <analyzer> -- <justification>\n")
}

// printVersion emits the -V=full line the go command uses to fingerprint a
// vettool for build caching. The content hash of the executable stands in
// for a real build ID; any change to the binary invalidates cached results.
// FDSLINT_FORMAT is folded in so plain and machine-readable runs occupy
// distinct cache entries — a cached "clean" from one format would otherwise
// silently swallow the other's output.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	sum := sha256.Sum256(append(data, []byte(os.Getenv("FDSLINT_FORMAT"))...))
	fmt.Printf("%s version devel buildID=%x\n", name, sum)
}

// diagJSON is one diagnostic in machine-readable form.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runStandalone re-invokes go vet with this executable as the vettool.
// With -json or -github the children are switched to JSON-lines output and
// their diagnostics are collected, sorted, and re-emitted in the requested
// format.
func runStandalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: cannot locate own executable: %v\n", err)
		return 1
	}
	var jsonOut, githubOut bool
	patterns := make([]string, 0, len(args))
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-github", "--github":
			githubOut = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stdin = os.Stdin
	if !jsonOut && !githubOut {
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
			return 1
		}
		return 0
	}

	cmd.Env = append(os.Environ(), "FDSLINT_FORMAT=json")
	var buf bytes.Buffer
	cmd.Stderr = &buf
	runErr := cmd.Run()

	// Children emit one JSON object per diagnostic line; everything else on
	// stderr is go vet chrome ("# pkg" headers) or a real error. Forward the
	// errors, drop the chrome, sort the diagnostics globally for a stable
	// cross-package order.
	var diags []diagJSON
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var d diagJSON
		if strings.HasPrefix(line, "{") && json.Unmarshal([]byte(line), &d) == nil && d.File != "" {
			diags = append(diags, d)
			continue
		}
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	switch {
	case jsonOut:
		out, err := json.MarshalIndent(diags, "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
			return 1
		}
		if diags == nil {
			out = []byte("[]")
		}
		fmt.Printf("%s\n", out)
	case githubOut:
		for _, d := range diags {
			// The annotation message is display-only; GitHub's parser only
			// needs commas and newlines escaped in the properties.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=fdslint %s::%s [%s]\n",
				d.File, d.Line, d.Col, d.Analyzer, d.Message, d.Analyzer)
		}
	}

	if len(diags) > 0 {
		return 2
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", runErr)
		return 1
	}
	return 0
}

// config mirrors the JSON schema the go command writes for a vettool, one
// file per package (see x/tools go/analysis/unitchecker).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnit analyzes the single package described by cfgPath and returns the
// process exit code.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
		return 1
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fdslint: cannot decode JSON config file %s: %v\n", cfgPath, err)
		return 1
	}

	// fdslint exports no facts, so the vetx output is always empty; write
	// it first so the go command can cache even a VetxOnly run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	unit, err := typecheck(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "fdslint: %v\n", err)
		return 1
	}

	jsonLines := os.Getenv("FDSLINT_FORMAT") == "json"
	exit := 0
	for _, a := range analyzers {
		diags, err := lint.Run(a, unit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdslint: %s: %v\n", a.Name, err)
			return 1
		}
		for _, d := range diags {
			pos := unit.Fset.Position(d.Pos)
			if jsonLines {
				enc, err := json.Marshal(diagJSON{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: d.Message,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "fdslint: %s: %v\n", a.Name, err)
					return 1
				}
				fmt.Fprintf(os.Stderr, "%s\n", enc)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, a.Name)
			}
			exit = 2
		}
	}
	return exit
}

// typecheck parses and type-checks the package described by cfg, resolving
// imports through the export data files the go command already built.
func typecheck(cfg *config) (*lint.Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
