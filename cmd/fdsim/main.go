// Command fdsim runs a full-system simulation — cluster formation, the
// three-round FDS, and inter-cluster failure-report forwarding (or one of
// the baseline detectors) — over a random field, injects crashes, and
// prints a summary: cluster census, per-victim completeness and detection
// latency, false suspicions, message counts, and energy expenditure.
//
// Usage:
//
//	fdsim [-nodes 100] [-field 500] [-p 0.1] [-epochs 12] [-crashes 3]
//	      [-crash-epoch 4] [-detector cluster-fds|gossip|flood|swim|query-response|all-pairs]
//	      [-seed 1] [-trials 1] [-workers N]
//	      [-metrics out.json] [-metrics-csv out.csv]
//	      [-no-peer-forwarding] [-no-bgw] [-no-implicit-acks]
//	      [-aggregate] [-sleep] [-naive-sleep]
//	      [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -cpuprofile and -memprofile write pprof profiles covering the whole run
// (the heap profile is taken at exit, after a final GC); see EXPERIMENTS.md
// § "Profiling the epoch hot loop" for how to read them.
//
// With -trials 1 (the default) fdsim runs and reports one simulation
// exactly as it always has. With -trials T > 1 it fans T independent,
// deterministically seeded replicas of the same scenario out over -workers
// cores (default GOMAXPROCS) and prints aggregate statistics; the output is
// identical for every worker count, and -workers 1 executes the replicas
// strictly serially on the calling goroutine.
//
// -metrics and -metrics-csv export the run's full metrics snapshot — per-kind
// message counters, per-epoch event series, latency histograms, summary
// gauges — as deterministic JSON/CSV (see EXPERIMENTS.md for the schema).
// With -trials T > 1 the exported snapshot is the merge of all replicas in
// replica order, byte-identical at every -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/metrics"
	"clusterfds/internal/scenario"
	"clusterfds/internal/shard"
	"clusterfds/internal/sim"
	"clusterfds/internal/sleep"
	"clusterfds/internal/stats"
	"clusterfds/internal/wire"
)

func main() {
	nodes := flag.Int("nodes", 100, "number of hosts")
	field := flag.Float64("field", 500, "deployment square edge (m)")
	lossProb := flag.Float64("p", 0.1, "per-receiver message loss probability")
	epochs := flag.Int("epochs", 12, "heartbeat intervals to simulate")
	crashes := flag.Int("crashes", 3, "hosts to crash")
	crashEpoch := flag.Int("crash-epoch", 4, "epoch at whose midpoint crashes occur")
	stackName := flag.String("stack", "cluster",
		"detector stack: cluster (alias cluster-fds), gossip, flood, swim, query-response, all-pairs")
	detector := flag.String("detector", "",
		"detector to run (same names as -stack; takes precedence when set)")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 1, "independent seeded replicas to run (1 = single legacy run)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"replica worker pool size (1 = serial; results are identical at any count)")
	noPeerFwd := flag.Bool("no-peer-forwarding", false, "disable intra-cluster peer forwarding")
	noBGW := flag.Bool("no-bgw", false, "disable backup-gateway assistance")
	noAcks := flag.Bool("no-implicit-acks", false, "disable implicit-ack retransmission")
	metricsJSON := flag.String("metrics", "", "write the metrics snapshot as JSON to this file")
	metricsCSV := flag.String("metrics-csv", "", "write the metrics snapshot as CSV to this file")
	withAgg := flag.Bool("aggregate", false, "attach the in-network aggregation service")
	withSleep := flag.Bool("sleep", false, "attach announced radio duty cycling")
	naiveSleep := flag.Bool("naive-sleep", false, "duty cycling WITHOUT sleep notices (the paper's hazard)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	shards := flag.Int("shards", 0,
		"run the sharded large-scale engine with this many spatial shards (0 = legacy per-host runtime); results are bit-identical at every shard count")
	shardWorkers := flag.Int("shard-workers", 1,
		"worker pool draining shards within a window (sharded engine only; any value gives identical results)")
	epochWorkers := flag.Int("epoch-workers", 0,
		"run the intra-replica parallel engine with this many workers (0 = legacy serial runtime); the trace hash is bit-identical at every worker count")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fdsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fdsim: cpuprofile: %v\n", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdsim: memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle: profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fdsim: memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fdsim: memprofile: %v\n", err)
			}
		}()
	}

	if *shards > 0 {
		runSharded(scenario.Config{
			Seed:      *seed,
			Nodes:     *nodes,
			FieldSide: *field,
			LossProb:  *lossProb,
		}, *shards, *shardWorkers, *epochs, *crashes, *crashEpoch)
		return
	}

	if *epochWorkers > 0 {
		runParallel(scenario.Config{
			Seed:         *seed,
			Nodes:        *nodes,
			FieldSide:    *field,
			LossProb:     *lossProb,
			EpochWorkers: *epochWorkers,
		}, *epochs, *crashes, *crashEpoch)
		return
	}

	name := *stackName
	if *detector != "" {
		name = *detector
	}
	var stack scenario.Stack
	if name == "cluster" {
		stack = scenario.StackClusterFDS
	} else {
		s, err := scenario.ParseStack(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdsim: %v\n", err)
			os.Exit(2)
		}
		stack = s
	}

	cfg := scenario.Config{
		Seed:                  *seed,
		Nodes:                 *nodes,
		FieldSide:             *field,
		LossProb:              *lossProb,
		Stack:                 stack,
		DisablePeerForwarding: *noPeerFwd,
		DisableBGWAssist:      *noBGW,
		DisableImplicitAcks:   *noAcks,
	}
	if *withAgg {
		cfg.AggregateSampler = func(id wire.NodeID, e wire.Epoch) (float64, bool) {
			return float64(id%100) + float64(e%10), true
		}
	}
	if *withSleep || *naiveSleep {
		scfg := sleep.DefaultConfig(cluster.DefaultTiming())
		scfg.Announce = !*naiveSleep
		cfg.Sleep = &scfg
	}
	if *trials > 1 {
		runReplicated(cfg, stack, *trials, *workers, *crashes, *crashEpoch, *epochs,
			*metricsJSON, *metricsCSV)
		return
	}
	w := scenario.Build(cfg)
	timing := w.Config().Timing
	ce := *crashEpoch
	if ce < 0 {
		ce = 0
	}
	crashAt := timing.EpochStart(wire.Epoch(ce)) + timing.Interval/2
	victims := w.CrashRandomAt(crashAt, *crashes)
	w.RunEpochs(*epochs)

	fmt.Printf("fdsim: stack=%v nodes=%d field=%.0fm p=%.2f epochs=%d seed=%d\n",
		stack, *nodes, *field, *lossProb, *epochs, *seed)
	fmt.Printf("virtual time simulated: %v (%d kernel events)\n\n",
		time.Duration(w.Kernel.Now()), w.Kernel.Steps())

	if stack == scenario.StackClusterFDS {
		c := w.Census()
		fmt.Printf("cluster census: %d clusterheads, %d members (%d gateways), %d unadmitted\n\n",
			c.Clusterheads, c.Members, c.Gateways, c.Unmarked)
	}

	if len(victims) > 0 {
		fmt.Printf("crashed at epoch %d (+%v): %v\n", *crashEpoch, timing.Interval/2, victims)
		for _, v := range victims {
			aware, operational := w.Completeness(v)
			lat := w.DetectionLatencies(v)
			latSummary := stats.NewSummary(true)
			for _, l := range lat {
				latSummary.Add(time.Duration(l).Seconds())
			}
			fmt.Printf("  %v: known by %d/%d operational hosts", v, aware, operational)
			if latSummary.N() > 0 {
				fmt.Printf("; detection latency mean %.2fs p95 %.2fs max %.2fs",
					latSummary.Mean(), latSummary.Percentile(0.95), latSummary.Max())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if fs := w.FalseSuspicions(); len(fs) > 0 {
		fmt.Printf("FALSE SUSPICIONS (%d): %v\n\n", len(fs), fs)
	} else {
		fmt.Printf("false suspicions: none\n\n")
	}

	counts := w.MessageCounts()
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Println("message counts:")
	var txTotal int64
	for _, name := range names {
		if len(name) > 3 && name[:3] == "tx:" {
			txTotal += counts[name]
		}
		fmt.Printf("  %-24s %d\n", name, counts[name])
	}
	fmt.Printf("  %-24s %d\n", "TX TOTAL", txTotal)
	fmt.Printf("\nenergy spent (all hosts): %.0f units (%.1f per host per epoch)\n",
		w.TotalEnergySpent(),
		w.TotalEnergySpent()/float64(*nodes)/float64(*epochs))

	if *withAgg {
		for _, id := range w.Operational() {
			if w.Cluster(id) != nil && w.Cluster(id).View().IsCH {
				e := timing.EpochOf(w.Kernel.Now()) - 1
				g, clusters := w.Aggregate(id).Global(e)
				fmt.Printf("\nglobal aggregate at CH %v (epoch %d, %d clusters): %s\n",
					id, e, clusters, g)
				break
			}
		}
	}

	exportMetrics(w.MetricsSnapshot(), *metricsJSON, *metricsCSV)
}

// exportMetrics writes the snapshot to the requested JSON/CSV files (empty
// path = skip). Both exports are deterministic byte-for-byte.
func exportMetrics(s metrics.Snapshot, jsonPath, csvPath string) {
	write := func(path, format string, fn func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdsim: writing %s metrics: %v\n", format, err)
			os.Exit(1)
		}
		fmt.Printf("metrics (%s) written to %s\n", format, path)
	}
	write(jsonPath, "json", func(f *os.File) error { return s.WriteJSON(f) })
	write(csvPath, "csv", func(f *os.File) error { return s.WriteCSV(f) })
}

// runReplicated fans trials independent replicas of the scenario out over
// the replication engine and prints aggregate statistics. Replica seeds are
// derived deterministically from cfg.Seed, so the printed numbers are a
// pure function of the flags — never of the worker count.
func runReplicated(cfg scenario.Config, stack scenario.Stack, trials, workers, crashes, crashEpoch, epochs int, metricsJSON, metricsCSV string) {
	if crashEpoch < 0 {
		crashEpoch = 0
	}
	study := scenario.CrashStudy{
		Config:     cfg,
		Crashes:    crashes,
		CrashEpoch: crashEpoch,
		Epochs:     epochs,
		Trials:     trials,
		Workers:    workers,
	}
	start := time.Now()
	outcomes := study.Run()
	elapsed := time.Since(start)
	s := scenario.Summarize(outcomes)

	fmt.Printf("fdsim: stack=%v nodes=%d field=%.0fm p=%.2f epochs=%d seed=%d trials=%d workers=%d\n",
		stack, cfg.Nodes, cfg.FieldSide, cfg.LossProb, epochs, cfg.Seed, trials, workers)
	fmt.Printf("wall clock: %v (%.1f replicas/s)\n\n", elapsed.Round(time.Millisecond),
		float64(trials)/elapsed.Seconds())
	fmt.Printf("completeness: mean %.4f min %.4f max %.4f\n",
		s.Completeness.Mean(), s.Completeness.Min(), s.Completeness.Max())
	if s.LatencySeconds.N() > 0 {
		fmt.Printf("detection latency (s): mean %.2f p95 %.2f max %.2f (%d observations)\n",
			s.LatencySeconds.Mean(), s.LatencySeconds.Percentile(0.95),
			s.LatencySeconds.Max(), s.LatencySeconds.N())
	}
	fmt.Printf("false suspicions: %d across %d replicas\n", s.FalseSuspicions, s.Trials)
	fmt.Printf("per-replica means: %.0f tx msgs, %.0f tx bytes, %.0f energy units\n",
		s.TxMessages, s.TxBytes, s.Energy)
	exportMetrics(s.Metrics, metricsJSON, metricsCSV)
}

// runSharded executes the large-scale sharded engine (see internal/shard)
// and prints its summary: detection outcomes per victim, traffic and energy
// totals, epoch throughput, memory per node, and the two determinism
// hashes. The hashes are the scale-smoke contract: `make scale-smoke`
// asserts they are identical between -shards 1 and -shards 4.
func runSharded(cfg scenario.Config, shards, workers, epochs, crashes, crashEpoch int) {
	sc := scenario.ShardedCrashWave(cfg, shards, workers, epochs, crashes, crashEpoch)

	// Liveness lines on stderr every 5 simulated seconds; stdout stays
	// reserved for the summary (the scale-smoke gate greps it for hashes).
	startWall := time.Now()
	sc.Progress = func(at sim.Time, events uint64) {
		fmt.Fprintf(os.Stderr, "progress: t=%v %d events (%.0f events/sec wall)\n",
			time.Duration(at).Round(time.Millisecond), events,
			float64(events)/time.Since(startWall).Seconds())
	}
	sc.ProgressEvery = 500

	buildStart := time.Now()
	eng := shard.Build(sc)
	buildElapsed := time.Since(buildStart)

	runStart := time.Now()
	res := eng.Run()
	runElapsed := time.Since(runStart)

	fmt.Printf("fdsim: sharded engine nodes=%d field=%.0fm p=%.2f epochs=%d seed=%d shards=%d workers=%d\n",
		sc.N, sc.Side, sc.Radio.LossProb, epochs, sc.Seed, res.Shards, res.Workers)
	fmt.Printf("build: %v (%.1f MB live heap, %.0f bytes/node)\n",
		buildElapsed.Round(time.Millisecond),
		float64(res.BuildHeapBytes)/(1<<20),
		float64(res.BuildHeapBytes)/float64(sc.N))
	perSec := float64(res.Events) / runElapsed.Seconds()
	fmt.Printf("run: %v for %d events (%.0f events/sec, %.0f events/epoch)\n\n",
		runElapsed.Round(time.Millisecond), res.Events, perSec,
		float64(res.Events)/float64(epochs))

	if len(res.Victims) > 0 {
		fmt.Printf("crash wave: %d victims at epoch %d midpoint; %d detected by their cells\n",
			len(res.Victims), crashEpoch, res.Detected)
		show := res.Victims
		const maxShow = 10
		if len(show) > maxShow {
			show = show[:maxShow]
		}
		for _, v := range show {
			if v.DetectedAt < 0 {
				fmt.Printf("  %v: never detected (likely alone in its cell); known by %d hosts\n", v.ID, v.Aware)
				continue
			}
			fmt.Printf("  %v: detected after %v; known by %d/%d hosts\n",
				v.ID, time.Duration(v.DetectedAt-v.CrashedAt), v.Aware, sc.N)
		}
		if len(res.Victims) > maxShow {
			fmt.Printf("  ... and %d more\n", len(res.Victims)-maxShow)
		}
		fmt.Println()
	}

	fmt.Printf("traffic: %d sends, %d deliveries, %d loss drops, %d dead drops\n",
		res.Sends, res.Deliveries, res.DropLoss, res.DropDead)
	fmt.Printf("bytes: %d tx, %d rx\n", res.TxBytes, res.RxBytes)
	fmt.Printf("detector: %d false positives, %d rescues\n", res.FalsePositives, res.Rescues)
	fmt.Printf("energy spent (all hosts): %.0f units\n\n", res.EnergySpent)

	fmt.Printf("trace hash: %016x\n", res.TraceHash)
	fmt.Printf("state hash: %016x\n", res.StateHash)
}

// runParallel drives the intra-replica parallel engine (internal/par): the
// production cluster stack partitioned into field strips and drained by a
// conservative-window worker pool. The printed trace hash is bit-identical at
// every -epoch-workers value; the par-smoke gate greps stdout for it.
func runParallel(cfg scenario.Config, epochs, crashes, crashEpoch int) {
	buildStart := time.Now()
	p := scenario.BuildParallel(cfg)
	buildElapsed := time.Since(buildStart)

	timing := p.Config().Timing
	ce := crashEpoch
	if ce < 0 {
		ce = 0
	}
	crashAt := timing.EpochStart(wire.Epoch(ce)) + timing.Interval/2
	victims := p.CrashRandomAt(crashAt, crashes)

	runStart := time.Now()
	p.RunEpochs(epochs)
	runElapsed := time.Since(runStart)

	eng := p.Engine()
	fmt.Printf("fdsim: parallel engine nodes=%d field=%.0fm p=%.2f epochs=%d seed=%d strips=%d workers=%d\n",
		cfg.Nodes, cfg.FieldSide, cfg.LossProb, epochs, cfg.Seed, eng.Strips(), cfg.EpochWorkers)
	fmt.Printf("build: %v; run: %v for %d sends / %d deliveries\n\n",
		buildElapsed.Round(time.Millisecond), runElapsed.Round(time.Millisecond),
		eng.Sends(), eng.Deliveries())

	if len(victims) > 0 {
		fmt.Printf("crashed at epoch %d (+%v): %v\n", ce, timing.Interval/2, victims)
		for _, v := range victims {
			aware, operational := p.Completeness(v)
			fmt.Printf("  %v: known by %d/%d operational hosts\n", v, aware, operational)
		}
		fmt.Println()
	}

	fmt.Printf("trace hash: %s\n", p.TraceHash())
}
