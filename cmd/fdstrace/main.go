// Command fdstrace runs a scenario like fdsim but streams every structured
// event — transmissions, deliveries, drops, elections, detections,
// takeovers, report forwarding — as JSON lines on stdout, one object per
// event, suitable for jq or downstream tooling.
//
// Usage:
//
//	fdstrace [-nodes 40] [-field 300] [-p 0.1] [-epochs 6] [-crashes 1]
//	         [-crash-epoch 3] [-seed 1] [-level protocol|radio]
//
// At -level protocol (default) only protocol-level events are emitted; at
// -level radio the per-message send/deliver/drop firehose is included.
package main

import (
	"flag"
	"fmt"
	"os"

	"clusterfds/internal/scenario"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

func main() {
	nodes := flag.Int("nodes", 40, "number of hosts")
	field := flag.Float64("field", 300, "deployment square edge (m)")
	lossProb := flag.Float64("p", 0.1, "per-receiver message loss probability")
	epochs := flag.Int("epochs", 6, "heartbeat intervals to simulate")
	crashes := flag.Int("crashes", 1, "hosts to crash")
	crashEpoch := flag.Int("crash-epoch", 3, "epoch at whose midpoint crashes occur")
	seed := flag.Int64("seed", 1, "random seed")
	level := flag.String("level", "protocol", "event granularity: protocol, radio")
	flag.Parse()

	var sink trace.Sink
	jsonl := trace.NewJSONL(os.Stdout)
	switch *level {
	case "radio":
		sink = jsonl
	case "protocol":
		sink = protocolFilter{jsonl}
	default:
		fmt.Fprintf(os.Stderr, "fdstrace: unknown level %q\n", *level)
		os.Exit(2)
	}

	w := scenario.Build(scenario.Config{
		Seed:      *seed,
		Nodes:     *nodes,
		FieldSide: *field,
		LossProb:  *lossProb,
		Trace:     sink,
	})
	ce := *crashEpoch
	if ce < 0 {
		ce = 0
	}
	timing := w.Config().Timing
	w.CrashRandomAt(timing.EpochStart(wire.Epoch(ce))+timing.Interval/2, *crashes)
	w.RunEpochs(*epochs)
}

// protocolFilter drops the radio-level firehose, keeping protocol events.
type protocolFilter struct {
	next trace.Sink
}

// Emit implements trace.Sink.
func (f protocolFilter) Emit(e trace.Event) {
	switch e.Type {
	case trace.TypeSend, trace.TypeDeliver, trace.TypeDrop:
		return
	default:
		f.next.Emit(e)
	}
}
