// Command fdsd runs one live node of the cluster-based failure detection
// service over UDP on localhost. It is the I/O shell around the sans-I/O
// core: the whole protocol stack (cluster formation, FDS, inter-cluster
// forwarding) runs on a virtual-time kernel inside internal/daemon, and
// this binary only supplies the impure edges — a UDP socket, the system
// clock, and POSIX signals.
//
// A 3-node localhost cluster:
//
//	fdsd -id 1 -listen 127.0.0.1:9001 -peers 2=127.0.0.1:9002,3=127.0.0.1:9003
//	fdsd -id 2 -listen 127.0.0.1:9002 -peers 1=127.0.0.1:9001,3=127.0.0.1:9003
//	fdsd -id 3 -listen 127.0.0.1:9003 -peers 1=127.0.0.1:9001,2=127.0.0.1:9002
//
// Each process reports membership and detection events as they happen; on
// SIGINT/SIGTERM it shuts down gracefully and prints a final deterministic
// state dump.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/daemon"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// realWall is the production WallClock: elapsed time since process start,
// and timer channels backed by the runtime timer wheel. This is the only
// place in the stack (outside tests) that touches package time — the
// deterministic packages are policed by fdslint's walltime analyzer.
type realWall struct {
	start time.Time
}

func (w realWall) Elapsed() sim.Time { return time.Since(w.start) }

func (w realWall) After(d sim.Time) <-chan struct{} {
	ch := make(chan struct{})
	if d <= 0 {
		close(ch)
		return ch
	}
	time.AfterFunc(d, func() { close(ch) })
	return ch
}

// consoleSink prints the membership- and detection-relevant trace events;
// with -verbose it prints every event including per-message send/deliver.
type consoleSink struct {
	verbose bool
}

func (s consoleSink) Emit(e trace.Event) {
	switch e.Type {
	case trace.TypeSend, trace.TypeDeliver, trace.TypeDrop:
		if !s.verbose {
			return
		}
	}
	fmt.Println(e)
}

// parsePeers parses "2=127.0.0.1:9002,3=127.0.0.1:9003" into a sorted
// roster of NIDs and the matching address list.
func parsePeers(s string) ([]wire.NodeID, []string, error) {
	if s == "" {
		return nil, nil, nil
	}
	type peer struct {
		id   wire.NodeID
		addr string
	}
	var peers []peer
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, fmt.Errorf("peer %q is not <nid>=<host:port>", part)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil || n == 0 {
			return nil, nil, fmt.Errorf("peer %q has invalid NID %q", part, id)
		}
		peers = append(peers, peer{id: wire.NodeID(n), addr: addr})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].id < peers[j].id })
	ids := make([]wire.NodeID, len(peers))
	addrs := make([]string, len(peers))
	for i, p := range peers {
		ids[i] = p.id
		addrs[i] = p.addr
	}
	return ids, addrs, nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this node's NID (required, nonzero)")
		listen   = flag.String("listen", "127.0.0.1:9001", "UDP listen address")
		peers    = flag.String("peers", "", "comma-separated peer roster: <nid>=<host:port>,...")
		seed     = flag.Int64("seed", 1, "kernel seed (jitter and backoff draws)")
		thop     = flag.Duration("thop", 20*time.Millisecond, "per-hop delay bound Thop (round length)")
		interval = flag.Duration("interval", 10*time.Second, "heartbeat interval phi (epoch length)")
		verbose  = flag.Bool("verbose", false, "also print per-message send/deliver events")
	)
	flag.Parse()
	if *id == 0 {
		fmt.Fprintln(os.Stderr, "fdsd: -id is required and must be nonzero")
		os.Exit(2)
	}
	timing := cluster.Timing{Thop: *thop, Interval: *interval}
	if !timing.Valid() {
		fmt.Fprintf(os.Stderr, "fdsd: invalid timing: interval %v must be at least 8x thop %v\n", *interval, *thop)
		os.Exit(2)
	}
	roster, addrs, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdsd: %v\n", err)
		os.Exit(2)
	}

	link, err := transport.NewUDPLink(wire.NodeID(*id), *listen, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdsd: %v\n", err)
		os.Exit(1)
	}
	defer link.Close()

	d := daemon.New(daemon.Config{
		ID:     wire.NodeID(*id),
		Seed:   *seed,
		Timing: timing,
		Peers:  roster,
		Trace:  consoleSink{verbose: *verbose},
	}, link)

	// SIGINT/SIGTERM close stop; the run loop finishes the event in
	// flight, advances to the current instant, and dumps final state.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
	}()

	fmt.Printf("fdsd node %d listening on %v, %d peers, Thop=%v phi=%v\n",
		*id, link.LocalAddr(), len(roster), *thop, *interval)
	if err := d.Run(realWall{start: time.Now()}, stop, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fdsd: %v\n", err)
		os.Exit(1)
	}
}
