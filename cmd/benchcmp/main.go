// Command benchcmp is the allocation-regression gate: it reads `go test
// -bench -benchmem` output on stdin, extracts allocs/op for each benchmark,
// and compares them against a committed baseline JSON. Any benchmark whose
// allocs/op exceeds its baseline by more than the tolerance fails the gate,
// as does a baseline benchmark missing from the input (a renamed or deleted
// benchmark must be renamed in the baseline too, deliberately). The reverse
// is informational only: a benchmark present in the input but absent from
// the baseline is reported as "new" and does not fail the gate, so a PR can
// introduce a benchmark and ratchet it into the baseline in one change.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem . | benchcmp -baseline bench_baseline.json
//
// The baseline maps bare benchmark names (no -cpu suffix) to allocs/op:
//
//	{"BenchmarkFDSEpoch": 35620, "BenchmarkCodec": 3}
//
// Allocation counts at a fixed -benchtime are deterministic for this
// repository's benchmarks (single-threaded simulation, fixed seeds), so the
// default tolerance of 10% only absorbs incidental variation from runtime
// internals across Go releases, not real regressions. When an optimization
// lowers a count, benchcmp says so; tighten the baseline in the same PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one -benchmem result line and captures the bare name
// (without the -GOMAXPROCS suffix) and the allocs/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?([\d.]+)\s+allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline JSON (name -> allocs/op)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional increase over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var baseline map[string]float64
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %s contains no benchmarks\n", *baselinePath)
		os.Exit(2)
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw results through for the log
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		v, err := strconv.ParseFloat(mm[2], 64)
		if err != nil {
			continue
		}
		got[mm[1]] = v
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: reading stdin: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	// Benchmarks present in the run but absent from the baseline are
	// informational, not failures: a PR that introduces a benchmark can run
	// it through the gate immediately and ratchet the baseline in the same
	// change, without a chicken-and-egg edit ordering.
	extra := make([]string, 0)
	for name := range got {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("benchcmp: new  %s: %.0f allocs/op (not in baseline — add it to ratchet the gate)\n",
			name, got[name])
	}

	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: missing from benchmark output\n", name)
			failed = true
			continue
		}
		limit := base * (1 + *tolerance)
		switch {
		case cur > limit:
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: %.0f allocs/op > %.0f (baseline %.0f +%.0f%%)\n",
				name, cur, limit, base, *tolerance*100)
			failed = true
		case cur < base:
			fmt.Printf("benchcmp: ok   %s: %.0f allocs/op (improved from %.0f — consider tightening the baseline)\n",
				name, cur, base)
		default:
			fmt.Printf("benchcmp: ok   %s: %.0f allocs/op (baseline %.0f)\n", name, cur, base)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: all allocation gates passed")
}
