// Command benchcmp is the allocation-regression gate: it reads `go test
// -bench -benchmem` output on stdin, extracts allocs/op, B/op, and ns/op for
// each benchmark, and compares them against a committed baseline JSON. Any
// benchmark whose allocs/op or B/op exceeds its baseline by more than the
// tolerance fails the gate, as does a baseline benchmark missing from the
// input (a renamed or deleted benchmark must be renamed in the baseline too,
// deliberately). The reverse is informational only: a benchmark present in
// the input but absent from the baseline is reported as "new" and does not
// fail the gate, so a PR can introduce a benchmark and ratchet it into the
// baseline in one change.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem . | benchcmp -baseline bench_baseline.json
//
// The baseline maps bare benchmark names (no -cpu suffix) to either a bare
// number (legacy form, allocs/op only) or an object carrying all three
// figures:
//
//	{"BenchmarkFDSEpoch": {"allocs": 1838, "bytes": 1036623, "ns": 20262772},
//	 "BenchmarkCodec": 3}
//
// Allocation and byte counts at a fixed -benchtime are deterministic for
// this repository's benchmarks (single-threaded simulation, fixed seeds), so
// the default tolerance of 10% only absorbs incidental variation from
// runtime internals across Go releases, not real regressions. When an
// optimization lowers a count, benchcmp says so; tighten the baseline in the
// same PR. Wall-clock (ns/op) depends on the machine, so it is never gated:
// when the baseline carries an ns figure, benchcmp prints the delta as an
// info line so drift is visible in the log without flaking the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one -benchmem result line and captures the bare name
// (without the -GOMAXPROCS suffix) and the ns/op, B/op, and allocs/op
// figures.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op.*?([\d.]+) B/op\s+([\d.]+) allocs/op`)

// entry is one benchmark's pinned figures. Allocs and Bytes are gated;
// Bytes == 0 means "not pinned" (legacy baselines carry only allocs). NS is
// informational only — machine-dependent, so deviations print but never
// fail.
type entry struct {
	Allocs float64 `json:"allocs"`
	Bytes  float64 `json:"bytes,omitempty"`
	NS     float64 `json:"ns,omitempty"`
}

// UnmarshalJSON accepts either the legacy bare-number form (allocs/op) or
// the full object form.
func (e *entry) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] != '{' {
		return json.Unmarshal(b, &e.Allocs)
	}
	type bare entry // drop methods to avoid recursion
	return json.Unmarshal(b, (*bare)(e))
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json",
		"committed baseline JSON (name -> allocs/op number or {allocs, bytes, ns} object)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional increase over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var baseline map[string]entry
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %s contains no benchmarks\n", *baselinePath)
		os.Exit(2)
	}

	got := make(map[string]entry)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw results through for the log
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		ns, err1 := strconv.ParseFloat(mm[2], 64)
		bytes, err2 := strconv.ParseFloat(mm[3], 64)
		allocs, err3 := strconv.ParseFloat(mm[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		got[mm[1]] = entry{Allocs: allocs, Bytes: bytes, NS: ns}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: reading stdin: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	// Benchmarks present in the run but absent from the baseline are
	// informational, not failures: a PR that introduces a benchmark can run
	// it through the gate immediately and ratchet the baseline in the same
	// change, without a chicken-and-egg edit ordering.
	extra := make([]string, 0)
	for name := range got {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("benchcmp: new  %s: %.0f allocs/op, %.0f B/op (not in baseline — add it to ratchet the gate)\n",
			name, got[name].Allocs, got[name].Bytes)
	}

	// gauge compares one gated figure against its baseline and returns
	// whether it regressed past the tolerance.
	gauge := func(name, unit string, cur, base float64) bool {
		limit := base * (1 + *tolerance)
		switch {
		case cur > limit:
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: %.0f %s > %.0f (baseline %.0f +%.0f%%)\n",
				name, cur, unit, limit, base, *tolerance*100)
			return true
		case cur < base:
			fmt.Printf("benchcmp: ok   %s: %.0f %s (improved from %.0f — consider tightening the baseline)\n",
				name, cur, unit, base)
		default:
			fmt.Printf("benchcmp: ok   %s: %.0f %s (baseline %.0f)\n", name, cur, unit, base)
		}
		return false
	}

	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: missing from benchmark output\n", name)
			failed = true
			continue
		}
		failed = gauge(name, "allocs/op", cur.Allocs, base.Allocs) || failed
		if base.Bytes > 0 {
			failed = gauge(name, "B/op", cur.Bytes, base.Bytes) || failed
		}
		if base.NS > 0 {
			// Wall-clock is machine-dependent: report, never gate.
			fmt.Printf("benchcmp: info %s: %.0f ns/op (baseline %.0f, %+.1f%%)\n",
				name, cur.NS, base.NS, 100*(cur.NS-base.NS)/base.NS)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: all allocation gates passed")
}
