// Command fdsfigs regenerates the paper's evaluation artifacts:
//
//	Figure 5:  P̂(False detection) vs message-loss probability p
//	Figure 6:  P(False detection on CH) vs p
//	Figure 7:  P̂(Incompleteness) vs p
//	Ext. A:    DCH reachability study (described in §4.2, omitted by the
//	           paper for space)
//	Ext. B:    Monte-Carlo cross-validation of the formulas against the
//	           protocol implementation where rates are measurable
//	Ext. C/H:  predicted message cost per interval vs population, for the
//	           cluster FDS, flat flooding, and gossip
//	Ext. I:    head-to-head detector matrix — every pluggable failure
//	           detector (cluster FDS, flood, gossip, SWIM, query-response,
//	           all-pairs) under crash-wave, partition, duty-sleep, and
//	           mobility on identical seeds
//
// Each figure is printed as a TSV table (one row per p, one column per
// cluster population) and, unless -format=tsv, as an ASCII log-scale chart
// mirroring the published plots.
//
// Usage:
//
//	fdsfigs [-fig all|5|6|7|A|B|C|I] [-format both|tsv|plot] [-trials N] [-seed S]
//	        [-workers N] [-metrics out.json] [-metrics-csv out.csv]
//	        [-detectors a,b,...] [-matrix-trials N]
//
// The Monte-Carlo figures (A, B and I) run their replicas on the parallel
// replication engine; -workers sizes the pool (default GOMAXPROCS, 1 =
// serial). Output is bit-identical at every worker count.
//
// -detectors filters the Ext. I matrix to a comma-separated subset of
// detector names (default: all of them); -matrix-trials sets its per-cell
// trial count. The table ends with a "matrix hash:" line — an FNV-64a digest
// of the TSV that CI compares across worker counts.
//
// -metrics / -metrics-csv attach per-trial registries to the Ext. B
// validation runs and export the snapshots — merged in case order, then
// measure order, then trial order — as deterministic JSON/CSV (schema in
// EXPERIMENTS.md). The flags only take effect when figure B runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"clusterfds/internal/analysis"
	"clusterfds/internal/metrics"
	"clusterfds/internal/montecarlo"
	"clusterfds/internal/scenario"
	"clusterfds/internal/textplot"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 5, 6, 7, A, B, C, I")
	format := flag.String("format", "both", "output format: both, tsv, plot")
	trials := flag.Int("trials", 2000, "Monte-Carlo trials per point (Ext. B)")
	seed := flag.Int64("seed", 1, "random seed for the Monte-Carlo figures")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker pool for the Monte-Carlo figures (results identical at any count)")
	metricsJSON := flag.String("metrics", "", "write Ext. B's merged metrics snapshot as JSON to this file")
	metricsCSV := flag.String("metrics-csv", "", "write Ext. B's merged metrics snapshot as CSV to this file")
	detectors := flag.String("detectors", "",
		"comma-separated detector filter for the Ext. I matrix (default: all detectors)")
	matrixTrials := flag.Int("matrix-trials", 5, "trials per Ext. I matrix cell")
	flag.Parse()

	wantTSV := *format == "both" || *format == "tsv"
	wantPlot := *format == "both" || *format == "plot"
	if !wantTSV && !wantPlot {
		fmt.Fprintf(os.Stderr, "fdsfigs: unknown format %q\n", *format)
		os.Exit(2)
	}

	figures := strings.Split(*fig, ",")
	if *fig == "all" {
		figures = []string{"5", "6", "7", "A", "B", "C", "I"}
	}
	for _, f := range figures {
		switch strings.TrimSpace(f) {
		case "5":
			analyticFigure(analysis.MeasureFalseDetection, "Figure 5", wantTSV, wantPlot)
		case "6":
			analyticFigure(analysis.MeasureFalseDetectionOnCH, "Figure 6", wantTSV, wantPlot)
		case "7":
			analyticFigure(analysis.MeasureIncompleteness, "Figure 7", wantTSV, wantPlot)
		case "A":
			dchReachability(*seed, *workers, wantTSV, wantPlot)
		case "B":
			mcValidation(*seed, *trials, *workers, *metricsJSON, *metricsCSV)
		case "C":
			costCurves(wantTSV, wantPlot)
		case "I":
			headToHead(*seed, *matrixTrials, *workers, *detectors)
		default:
			fmt.Fprintf(os.Stderr, "fdsfigs: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}

// analyticFigure prints one of the paper's three results figures.
func analyticFigure(m analysis.Measure, title string, wantTSV, wantPlot bool) {
	ps := analysis.DefaultLossSweep()
	pops := analysis.PaperPopulations()

	if wantTSV {
		fmt.Printf("# %s: %s (R = 100 m, members uniform, worst-case subject)\n", title, m)
		fmt.Print("p")
		for _, n := range pops {
			fmt.Printf("\tN=%d", n)
		}
		fmt.Println()
		for _, p := range ps {
			fmt.Printf("%.2f", p)
			for _, n := range pops {
				fmt.Printf("\t%.6e", m.Eval(n, p))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if wantPlot {
		chart := textplot.Chart{
			Title:  fmt.Sprintf("%s: %s", title, m),
			XLabel: "probability of message loss (p)",
			LogY:   true,
			YFloor: 1e-30,
		}
		for _, n := range pops {
			s := textplot.Series{Name: fmt.Sprintf("N=%d", n)}
			for _, pt := range analysis.Series(m, n, ps) {
				s.X = append(s.X, pt.P)
				s.Y = append(s.Y, pt.Value)
			}
			chart.Series = append(chart.Series, s)
		}
		fmt.Println(chart.Render())
	}
}

// dchReachability prints the Ext. A study: the probability that a member
// out of the deputy's range is still observed through digests, against the
// CH-DCH distance.
func dchReachability(seed int64, workers int, wantTSV, wantPlot bool) {
	ds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	pops := analysis.PaperPopulations()
	const p = 0.1

	results := make(map[int][]analysis.Result, len(pops))
	for _, n := range pops {
		c := analysis.DCHReach{R: 100, N: n, P: p}
		// Per-population seed offset keeps the populations' random streams
		// independent; each sweep parallelizes over the distances.
		results[n] = c.SweepParallel(seed+int64(n), ds, 400, workers)
	}

	if wantTSV {
		fmt.Printf("# Ext. A: DCH reachability (R = 100 m, p = %.2f)\n", p)
		fmt.Print("d\toutOfRange")
		for _, n := range pops {
			fmt.Printf("\tP(unobserved) N=%d", n)
		}
		fmt.Println()
		for i, d := range ds {
			fmt.Printf("%.0f\t%.4f", d, results[pops[0]][i].OutOfRange)
			for _, n := range pops {
				fmt.Printf("\t%.6e", results[n][i].Unobserved)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if wantPlot {
		chart := textplot.Chart{
			Title:  "Ext. A: P(member out of DCH range AND unobserved) vs CH-DCH distance",
			XLabel: "CH-DCH distance d (m)",
			LogY:   true,
			YFloor: 1e-12,
		}
		for _, n := range pops {
			s := textplot.Series{Name: fmt.Sprintf("N=%d", n)}
			for i, d := range ds {
				s.X = append(s.X, d)
				s.Y = append(s.Y, results[n][i].Unobserved)
			}
			chart.Series = append(chart.Series, s)
		}
		fmt.Println(chart.Render())
	}
}

// costCurves prints the Ext. C/H cost curves: predicted transmissions per
// heartbeat interval for the cluster-based FDS versus flat flooding, as the
// population grows — the quantitative form of the paper's Section 3
// scalability argument.
func costCurves(wantTSV, wantPlot bool) {
	ns := []int{50, 100, 200, 400, 800, 1600}
	const p = 0.1
	// Empirical structural densities from the simulator (clusters and
	// gateway candidates per node on uniform fields at R = 100 m).
	const clustersPerNode, gatewaysPerNode = 0.11, 0.55

	cluster := func(n int) float64 {
		c := analysis.ClusterCost{
			Nodes:    n,
			Clusters: int(clustersPerNode * float64(n)),
			Gateways: int(gatewaysPerNode * float64(n)),
			LossProb: p,
		}
		return c.PerEpoch().Total()
	}

	if wantTSV {
		fmt.Printf("# Ext. C/H: predicted transmissions per interval (p = %.2f)\n", p)
		fmt.Println("n\tcluster-fds\tflooding\tgossip-msgs\tadvantage")
		for _, n := range ns {
			cl := cluster(n)
			fl := analysis.FloodingPerInterval(n, p)
			fmt.Printf("%d\t%.0f\t%.0f\t%.0f\t%.1fx\n", n, cl, fl, analysis.GossipPerInterval(n), fl/cl)
		}
		fmt.Println()
	}
	if wantPlot {
		chart := textplot.Chart{
			Title:  "Ext. C/H: transmissions per heartbeat interval vs population",
			XLabel: "population n",
			LogY:   true,
			YFloor: 1,
		}
		var clS, flS textplot.Series
		clS.Name, flS.Name = "cluster-fds", "flooding"
		for _, n := range ns {
			clS.X = append(clS.X, float64(n))
			clS.Y = append(clS.Y, cluster(n))
			flS.X = append(flS.X, float64(n))
			flS.Y = append(flS.Y, analysis.FloodingPerInterval(n, p))
		}
		chart.Series = []textplot.Series{clS, flS}
		fmt.Println(chart.Render())
	}
}

// headToHead prints the Ext. I study: every requested detector under every
// disruption scenario on identical seeds, one row per cell. The field is a
// dense clique (64 m side, everyone in radio range) so the one-hop-only
// detectors compete on protocol quality rather than on reach, which is what
// the head-to-head is for; multi-hop scaling is Ext. C/H's subject.
func headToHead(seed int64, trials, workers int, filter string) {
	m := scenario.Matrix{
		Config:  scenario.Config{Seed: seed, Nodes: 40, FieldSide: 64},
		Trials:  trials,
		Workers: workers,
	}
	if filter != "" {
		for _, name := range strings.Split(filter, ",") {
			s, err := scenario.ParseStack(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdsfigs: %v\n", err)
				os.Exit(2)
			}
			m.Stacks = append(m.Stacks, s)
		}
	}
	r := m.Run()
	fmt.Printf("# Ext. I: head-to-head detector matrix (n = %d, %.0f m clique, %d trials/cell)\n",
		m.Config.Nodes, float64(m.Config.FieldSide), trials)
	if err := r.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fdsfigs: writing matrix: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("matrix hash: %016x\n\n", r.Hash())
}

// mcValidation prints the Ext. B comparison: analytic prediction vs the
// protocol implementation's measured rates, in the regime where rates are
// measurable. With metrics export paths set, every trial carries a registry
// and the merged snapshot is written after the table.
func mcValidation(seed int64, trials, workers int, metricsJSON, metricsCSV string) {
	collect := metricsJSON != "" || metricsCSV != ""
	fmt.Println("# Ext. B: Monte-Carlo validation (protocol implementation vs formulas)")
	fmt.Println("measure\tN\tp\tanalytic\tempirical\twilson95lo\twilson95hi\tconsistent")
	cases := []montecarlo.ClusterExperiment{
		{N: 8, LossProb: 0.5, Trials: trials, Seed: seed, Workers: workers},
		{N: 8, LossProb: 0.6, Trials: trials, Seed: seed + 1, Workers: workers},
		{N: 12, LossProb: 0.6, Trials: trials, Seed: seed + 2, Workers: workers},
		{N: 15, LossProb: 0.5, Trials: trials, Seed: seed + 3, Workers: workers},
	}
	var merged metrics.Snapshot
	for _, e := range cases {
		e.CollectMetrics = collect
		for _, out := range e.AllMeasures() {
			lo, hi := out.Empirical.Wilson(1.96)
			fmt.Printf("%s\t%d\t%.2f\t%.4e\t%.4e\t%.4e\t%.4e\t%v\n",
				out.Name, e.N, e.LossProb, out.Analytic,
				out.Empirical.Estimate(), lo, hi, out.Consistent(1.96))
			merged.Merge(out.Metrics)
		}
	}
	fmt.Println()
	if collect {
		exportMetrics(merged, metricsJSON, metricsCSV)
	}
}

// exportMetrics writes the snapshot to the requested JSON/CSV files (empty
// path = skip). Both exports are deterministic byte-for-byte.
func exportMetrics(s metrics.Snapshot, jsonPath, csvPath string) {
	write := func(path, format string, fn func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdsfigs: writing %s metrics: %v\n", format, err)
			os.Exit(1)
		}
		fmt.Printf("metrics (%s) written to %s\n", format, path)
	}
	write(jsonPath, "json", func(f *os.File) error { return s.WriteJSON(f) })
	write(csvPath, "csv", func(f *os.File) error { return s.WriteCSV(f) })
}
