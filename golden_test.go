package clusterfds_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"testing"
	"time"

	"clusterfds/internal/scenario"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// goldenRunHash pins the byte-exact behavior of a full 100-node cluster-FDS
// run: every trace event (in emission order) plus the complete metrics
// export (JSON and CSV) is folded into one SHA-256. The constant was
// committed BEFORE the PR 4 dense-state/heap/decode rewrite, so the rewrite
// must reproduce the pre-rewrite run bit for bit — any change to event
// ordering, detection outcomes, message traffic, or metric values shows up
// as a hash mismatch. Update this constant only for changes that are MEANT
// to alter simulation behavior, and say so in the commit message.
const goldenRunHash = "50bcd883dceb7a21bd8fe9445dee6e092c7135b6a02156b98f96bcb954b5d845"

// hashSink streams trace events into a hash without retaining them.
type hashSink struct {
	h hash.Hash
	n int
}

func (s *hashSink) Emit(e trace.Event) {
	s.n++
	fmt.Fprintf(s.h, "%d|%s|%d|%s\n", int64(e.At), e.Type, e.Node, e.Detail)
}

// TestGoldenTraceHash is the determinism regression gate for hot-path
// rewrites (satellite of PR 4). It exercises the whole stack — clustering,
// FDS epochs, crashes mid-epoch, peer forwarding, rescissions, metrics —
// and requires the combined trace+metrics digest to be stable.
func TestGoldenTraceHash(t *testing.T) {
	sink := &hashSink{h: sha256.New()}
	w := scenario.Build(scenario.Config{
		Seed:      20260806,
		Nodes:     100,
		FieldSide: 500,
		LossProb:  0.1,
		Stack:     scenario.StackClusterFDS,
		Trace:     sink,
	})

	// Let clustering settle, then crash nodes in two waves so the run
	// includes detections, health updates, and takeover traffic.
	timing := w.Config().Timing
	crashA := sim.Time(3)*timing.Interval + sim.Time(200*time.Millisecond)
	crashB := sim.Time(6)*timing.Interval + sim.Time(700*time.Millisecond)
	w.CrashRandomAt(crashA, 3)
	w.CrashRandomAt(crashB, 2)
	w.RunEpochs(12)

	// Fold the full metrics export (both encodings) into the same digest so
	// counter/histogram/series regressions are caught too.
	snap := w.MetricsSnapshot()
	if err := snap.WriteJSON(sink.h); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := snap.WriteCSV(sink.h); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	// Fold in a stable summary of final detector state as seen by one
	// survivor, so suspicion outcomes are covered even if tracing of some
	// event type changes.
	var probe wire.NodeID
	for _, id := range w.Operational() {
		probe = id
		break
	}
	aware, operational := w.Completeness(probe)
	fmt.Fprintf(sink.h, "completeness|%d|%d|%d\n", probe, aware, operational)

	got := hex.EncodeToString(sink.h.Sum(nil))
	if sink.n == 0 {
		t.Fatal("trace sink saw zero events; scenario not wired to sink")
	}
	if got != goldenRunHash {
		t.Errorf("golden run hash changed:\n  got  %s\n  want %s\n(%d trace events) — the run is no longer byte-identical to the pre-rewrite behavior", got, goldenRunHash, sink.n)
	}
}

// goldenParallelHash pins the intra-replica parallel engine's canonical run:
// the same two-wave crash scenario as the legacy golden test, on the
// strip-partitioned engine (internal/par). The constant was computed at
// EpochWorkers=1 when the engine landed; the test reruns the scenario at 1,
// 2, and 4 workers and requires the SAME digest from each — so it gates both
// behavioral drift over time and worker-count divergence in one constant.
// Update it only for changes MEANT to alter the parallel engine's timeline
// (e.g. a different strip partition), and say so in the commit message.
const goldenParallelHash = "1f4057ea22bee85fd456f41a5cc788dad469c98163deec478629095f5f3949e1"

// TestGoldenParallelTraceHash is the parallel twin of TestGoldenTraceHash:
// clustering, FDS epochs, two crash waves, rescissions — drained by the
// conservative-window worker pool — must hash bit-identically at every
// worker count, and identically to the committed constant.
func TestGoldenParallelTraceHash(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := scenario.BuildParallel(scenario.Config{
			Seed:         20260806,
			Nodes:        200,
			FieldSide:    700,
			LossProb:     0.1,
			Stack:        scenario.StackClusterFDS,
			EpochWorkers: workers,
		})
		timing := p.Config().Timing
		p.CrashRandomAt(sim.Time(3)*timing.Interval+sim.Time(200*time.Millisecond), 3)
		p.CrashRandomAt(sim.Time(6)*timing.Interval+sim.Time(700*time.Millisecond), 2)
		p.RunEpochs(12)
		if got := p.TraceHash(); got != goldenParallelHash {
			t.Errorf("EpochWorkers=%d: parallel golden hash changed:\n  got  %s\n  want %s", workers, got, goldenParallelHash)
		}
	}
}
