module clusterfds

go 1.22
