// Benchmark harness: one benchmark per evaluation artifact of the paper
// (Figures 5, 6, 7) and per extension experiment in DESIGN.md (Ext. A–E),
// plus performance benchmarks for the substrate. Each figure benchmark
// regenerates the published series and reports its headline numbers as
// benchmark metrics, so `go test -bench=.` doubles as the reproduction run;
// cmd/fdsfigs prints the same series as TSV/ASCII plots.
package clusterfds_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"clusterfds/internal/analysis"
	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/metrics"
	"clusterfds/internal/montecarlo"
	"clusterfds/internal/node"
	"clusterfds/internal/par"
	"clusterfds/internal/radio"
	"clusterfds/internal/scenario"
	"clusterfds/internal/shard"
	"clusterfds/internal/sim"
	"clusterfds/internal/sleep"
	"clusterfds/internal/wire"
)

// --- Figures 5, 6, 7: the paper's analytic curves ---------------------------

// benchmarkFigure evaluates one full figure (all three population curves
// over the loss sweep) per iteration and reports the curves' endpoints.
func benchmarkFigure(b *testing.B, m analysis.Measure) {
	b.Helper()
	ps := analysis.DefaultLossSweep()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, n := range analysis.PaperPopulations() {
			for _, pt := range analysis.Series(m, n, ps) {
				sink += pt.Value
			}
		}
	}
	_ = sink
	// Headline values, readable off the published plots.
	b.ReportMetric(m.Eval(50, 0.5), "N50_p0.5")
	b.ReportMetric(m.Eval(100, 0.05), "N100_p0.05")
}

// BenchmarkFigure5 regenerates P̂(False detection) vs p (paper Figure 5).
func BenchmarkFigure5(b *testing.B) { benchmarkFigure(b, analysis.MeasureFalseDetection) }

// BenchmarkFigure6 regenerates P(False detection on CH) vs p (Figure 6).
func BenchmarkFigure6(b *testing.B) { benchmarkFigure(b, analysis.MeasureFalseDetectionOnCH) }

// BenchmarkFigure7 regenerates P̂(Incompleteness) vs p (Figure 7).
func BenchmarkFigure7(b *testing.B) { benchmarkFigure(b, analysis.MeasureIncompleteness) }

// BenchmarkFigure5PaperSum evaluates the paper's literal double summation
// (the closed form above is the fast path; this is the fidelity baseline).
func BenchmarkFigure5PaperSum(b *testing.B) {
	ps := analysis.DefaultLossSweep()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, n := range analysis.PaperPopulations() {
			for _, p := range ps {
				sink += analysis.FalseDetectionPaperSum(n, p)
			}
		}
	}
	_ = sink
}

// --- Ext. A: DCH reachability study ------------------------------------------

// BenchmarkDCHReachability reproduces the study the paper describes in
// Section 4.2 but omits: the probability that a member out of the deputy's
// range goes unobserved, versus CH-DCH distance.
func BenchmarkDCHReachability(b *testing.B) {
	c := analysis.DCHReach{R: 100, N: 75, P: 0.1}
	rng := rand.New(rand.NewSource(1))
	var last analysis.Result
	for i := 0; i < b.N; i++ {
		last = c.Evaluate(rng, 50, 200)
	}
	b.ReportMetric(last.OutOfRange, "P_outOfRange_d50")
	b.ReportMetric(last.Unobserved, "P_unobserved_d50")
}

// --- Ext. B: Monte-Carlo validation of the formulas --------------------------

// BenchmarkMonteCarloValidation runs protocol-level trials at parameters
// where the analytic rates are measurable and reports empirical vs analytic.
// consistency=1 means the prediction falls inside the 95% Wilson interval.
// Trials run strictly serially (workers=1): this is the baseline the
// parallel benchmark below is measured against.
func BenchmarkMonteCarloValidation(b *testing.B) {
	for _, tc := range []montecarlo.ClusterExperiment{
		{N: 8, LossProb: 0.5, Seed: 1, Workers: 1},
		{N: 12, LossProb: 0.6, Seed: 2, Workers: 1},
	} {
		tc := tc
		b.Run(fmt.Sprintf("N=%d_p=%.1f", tc.N, tc.LossProb), func(b *testing.B) {
			b.ReportAllocs()
			tc.Trials = b.N
			if tc.Trials < 200 {
				tc.Trials = 200
			}
			out := tc.FalseDetection()
			b.ReportMetric(out.Analytic, "analytic")
			b.ReportMetric(out.Empirical.Estimate(), "empirical")
			consistent := 0.0
			if out.Consistent(1.96) {
				consistent = 1
			}
			b.ReportMetric(consistent, "consistent")
		})
	}
}

// benchMonteCarloFixedWork runs a fixed batch of 400 trials per iteration at
// the given worker count, so serial and parallel ns/op are directly
// comparable: speedup = Serial ns/op ÷ Parallel ns/op.
func benchMonteCarloFixedWork(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	e := montecarlo.ClusterExperiment{N: 10, LossProb: 0.5, Trials: 400, Seed: 42, Workers: workers}
	var last montecarlo.Outcome
	for i := 0; i < b.N; i++ {
		last = e.FalseDetection()
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(last.Empirical.Estimate(), "empirical")
}

// BenchmarkMonteCarloValidationSerial is the 1-worker baseline for the
// speedup comparison (identical statistical output to the parallel run).
func BenchmarkMonteCarloValidationSerial(b *testing.B) { benchMonteCarloFixedWork(b, 1) }

// BenchmarkMonteCarloValidationParallel fans the same 400 trials over
// GOMAXPROCS workers via the replication engine. At >=4 cores this must be
// >=2x faster than BenchmarkMonteCarloValidationSerial while reporting the
// same empirical value — replicas are independent kernels, so the engine
// scales nearly linearly.
func BenchmarkMonteCarloValidationParallel(b *testing.B) { benchMonteCarloFixedWork(b, 0) }

// --- Ext. C: dissemination cost vs baselines (scalability) -------------------

// benchCost runs one crash through a stack per replica — fanned out over
// the replication engine — and reports message/byte/energy cost and
// dissemination quality.
func benchCost(b *testing.B, stack scenario.Stack, nodes int) {
	b.Helper()
	study := scenario.CrashStudy{
		Config: scenario.Config{
			Seed: 1, Nodes: nodes, FieldSide: 200 * float64(nodes) / 50,
			LossProb: 0.1, Stack: stack,
		},
		Crashes: 1, CrashEpoch: 3, Epochs: 8, Trials: b.N,
	}
	s := scenario.Summarize(study.Run())
	b.ReportMetric(s.TxMessages, "tx-msgs/run")
	b.ReportMetric(s.TxBytes, "tx-bytes/run")
	b.ReportMetric(s.Energy, "energy/run")
	b.ReportMetric(s.Completeness.Mean(), "completeness")
}

// BenchmarkDisseminationClusterFDS measures the paper's system.
func BenchmarkDisseminationClusterFDS(b *testing.B) { benchCost(b, scenario.StackClusterFDS, 150) }

// BenchmarkDisseminationGossip measures the gossip-style baseline.
func BenchmarkDisseminationGossip(b *testing.B) { benchCost(b, scenario.StackGossip, 150) }

// BenchmarkDisseminationFlood measures the flat-flooding baseline the paper
// contrasts against ("far more efficiently than with flat flooding").
func BenchmarkDisseminationFlood(b *testing.B) { benchCost(b, scenario.StackFlood, 150) }

// --- Ext. D: inter-cluster robustness ablations -------------------------------

// benchAblation measures how far a failure report has spread ONE heartbeat
// interval after detection (before the cumulative-update catch-up masks the
// mechanisms' contribution), under heavy loss, with selected robustness
// mechanisms disabled.
func benchAblation(b *testing.B, mutate func(*scenario.Config)) {
	b.Helper()
	cfg := scenario.Config{Seed: 1, Nodes: 120, FieldSide: 450, LossProb: 0.35}
	if mutate != nil {
		mutate(&cfg)
	}
	// Detection happens in epoch 4; sample right after the report flood,
	// at the end of epoch 4. Replicas fan out over the replication engine.
	study := scenario.CrashStudy{
		Config: cfg, Crashes: 1, CrashEpoch: 3, Epochs: 5, Trials: b.N,
	}
	s := scenario.Summarize(study.Run())
	b.ReportMetric(s.Completeness.Mean(), "completeness@flood")
}

// BenchmarkInterClusterForwarding quantifies the Section 4.3 mechanisms on
// a random field by early-spread completeness under 35% loss (the layered
// redundancy — border relays, cumulative updates — keeps even the ablated
// configurations close; the chain benchmark below isolates each hop).
func BenchmarkInterClusterForwarding(b *testing.B) {
	b.Run("full", func(b *testing.B) { benchAblation(b, nil) })
	b.Run("no-implicit-acks", func(b *testing.B) {
		benchAblation(b, func(c *scenario.Config) { c.DisableImplicitAcks = true })
	})
	b.Run("no-bgw", func(b *testing.B) {
		benchAblation(b, func(c *scenario.Config) { c.DisableBGWAssist = true })
	})
}

// chainHopDelivery builds the controlled two-hop chain (cluster A - gateway
// - cluster B - gateway - cluster C, exactly one gateway per pair unless
// backups are added) at the given loss probability, crashes a member of A,
// and reports whether the far clusterhead C learned of it within the
// origination epoch. This isolates the per-hop robustness that implicit
// acknowledgments and backup gateways buy.
func chainHopDelivery(b *testing.B, lossProb float64, backups bool, icfg func(*intercluster.Config)) float64 {
	b.Helper()
	delivered := 0
	for i := 0; i < b.N; i++ {
		k := sim.New(int64(i + 1))
		m := radio.New(k, radio.Defaults(lossProb))
		timing := cluster.DefaultTiming()
		positions := []geo.Point{
			{X: 0, Y: 0},     // n1 CH A
			{X: 150, Y: 0},   // n2 CH B
			{X: 300, Y: 0},   // n3 CH C
			{X: -20, Y: 10},  // n4 member A
			{X: -20, Y: -10}, // n5 member A
			{X: 75, Y: 0},    // n6 gateway A-B
			{X: 225, Y: 0},   // n7 gateway B-C
			{X: 20, Y: 30},   // n8 member A (victim)
			{X: 180, Y: 30},  // n9 member B
			{X: 300, Y: 40},  // n10 member C
		}
		if backups {
			positions = append(positions,
				geo.Point{X: 75, Y: 25},  // n11 backup gateway A-B
				geo.Point{X: 225, Y: 25}, // n12 backup gateway B-C
			)
		}
		var hosts []*node.Host
		var fdss []*fds.Protocol
		for j, pos := range positions {
			h := node.New(k, m, wire.NodeID(j+1), pos)
			cl := cluster.New(cluster.DefaultConfig())
			f := fds.New(fds.DefaultConfig(timing), cl)
			cfg := intercluster.DefaultConfig(timing)
			if icfg != nil {
				icfg(&cfg)
			}
			fw := intercluster.New(cfg, cl, f)
			h.Use(cl)
			h.Use(f)
			h.Use(fw)
			hosts = append(hosts, h)
			fdss = append(fdss, f)
		}
		for _, h := range hosts {
			h.Boot()
		}
		k.At(timing.EpochStart(2)+timing.Interval/2, func() { hosts[7].Crash() })
		// Sample at the end of the detection epoch (epoch 3).
		k.RunUntil(timing.EpochStart(4) - 1)
		if fdss[2].IsSuspected(8) { // CH C, two cluster hops from the victim
			delivered++
		}
	}
	return float64(delivered) / float64(b.N)
}

// BenchmarkChainHopRobustness sweeps the Section 4.3 configurations over a
// two-hop backbone at p = 0.3.
func BenchmarkChainHopRobustness(b *testing.B) {
	const p = 0.3
	b.Run("full+bgw", func(b *testing.B) {
		b.ReportMetric(chainHopDelivery(b, p, true, nil), "two-hop-delivery")
	})
	b.Run("full-no-backups-present", func(b *testing.B) {
		b.ReportMetric(chainHopDelivery(b, p, false, nil), "two-hop-delivery")
	})
	b.Run("no-implicit-acks", func(b *testing.B) {
		b.ReportMetric(chainHopDelivery(b, p, true, func(c *intercluster.Config) {
			c.ImplicitAcks = false
		}), "two-hop-delivery")
	})
	b.Run("no-acks-no-backups", func(b *testing.B) {
		b.ReportMetric(chainHopDelivery(b, p, false, func(c *intercluster.Config) {
			c.ImplicitAcks = false
			c.BGWAssist = false
		}), "two-hop-delivery")
	})
}

// BenchmarkPeerForwarding quantifies the intra-cluster completeness
// enhancement (Section 4.2) by the per-epoch health-update miss rate of
// active members at p = 0.3 — the quantity Figure 7 bounds.
func BenchmarkPeerForwarding(b *testing.B) {
	measure := func(b *testing.B, disable bool) {
		var missed, sampled float64
		for i := 0; i < b.N; i++ {
			w := scenario.Build(scenario.Config{
				Seed: int64(i + 1), Nodes: 80, FieldSide: 300, LossProb: 0.3,
				DisablePeerForwarding: disable,
			})
			timing := w.Config().Timing
			for e := 3; e <= 7; e++ {
				w.Run(timing.EpochStart(wire.Epoch(e+1)) - 1)
				for _, id := range w.NodeIDs() {
					f := w.FDS(id)
					if w.Host(id).Crashed() || !f.Active() {
						continue
					}
					if v := w.Cluster(id).View(); v.IsCH {
						continue
					}
					sampled++
					if !f.UpdateReceived() {
						missed++
					}
				}
				w.Run(timing.EpochStart(wire.Epoch(e + 1)))
			}
		}
		b.ReportMetric(missed/sampled, "update-miss-rate")
	}
	b.Run("with-peer-forwarding", func(b *testing.B) { measure(b, false) })
	b.Run("without", func(b *testing.B) { measure(b, true) })
}

// --- Ext. E: CH failure -> DCH takeover ---------------------------------------

// BenchmarkCHTakeover measures takeover success rate and latency when a
// clusterhead dies under loss.
func BenchmarkCHTakeover(b *testing.B) {
	var successes, latSum float64
	for i := 0; i < b.N; i++ {
		w := scenario.Build(scenario.Config{
			Seed: int64(i + 1), Nodes: 60, FieldSide: 250, LossProb: 0.2,
		})
		timing := w.Config().Timing
		w.RunEpochs(3)
		// Crash the lowest-NID clusterhead.
		var ch wire.NodeID
		for _, id := range w.NodeIDs() {
			if w.Cluster(id).View().IsCH {
				ch = id
				break
			}
		}
		if ch == wire.NoNode {
			continue
		}
		w.CrashAt(timing.EpochStart(3)+timing.Interval/2, ch)
		w.RunEpochs(8)
		aware, operational := w.Completeness(ch)
		if operational > 0 && aware == operational {
			successes++
		}
		if lats := w.DetectionLatencies(ch); len(lats) > 0 {
			latSum += time.Duration(lats[0]).Seconds()
		}
	}
	n := float64(b.N)
	b.ReportMetric(successes/n, "full-dissemination-rate")
	b.ReportMetric(latSum/n, "first-detection-s")
}

// --- substrate performance -----------------------------------------------------

// BenchmarkClusterFormation measures end-to-end formation cost by field size.
func BenchmarkClusterFormation(b *testing.B) {
	for _, nodes := range []int{100, 400, 1000} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := scenario.Build(scenario.Config{
					Seed: int64(i + 1), Nodes: nodes,
					FieldSide: 200 * float64(nodes) / 50, LossProb: 0.1,
				})
				w.RunEpochs(3)
				if c := w.Census(); c.Clusterheads == 0 {
					b.Fatal("no clusters formed")
				}
			}
		})
	}
}

// BenchmarkFDSEpoch measures the steady-state cost of one FDS execution
// across a 300-node field (kernel events + real time per epoch).
func BenchmarkFDSEpoch(b *testing.B) {
	w := scenario.Build(scenario.Config{Seed: 1, Nodes: 300, FieldSide: 800, LossProb: 0.1})
	w.RunEpochs(3) // formation settles
	startEvents := w.Kernel.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunEpochs(4 + i)
	}
	b.StopTimer()
	b.ReportMetric(float64(w.Kernel.Steps()-startEvents)/float64(b.N), "kernel-events/epoch")
}

// benchDetectorEpoch measures one flat detector's steady-state epoch cost on
// a dense 100-node field (everyone one hop apart, like the Ext. D study),
// using the same settle-then-measure shape as BenchmarkFDSEpoch.
func benchDetectorEpoch(b *testing.B, stack scenario.Stack) {
	w := scenario.Build(scenario.Config{Seed: 1, Nodes: 100, FieldSide: 64, LossProb: 0.1, Stack: stack})
	w.RunEpochs(3)
	startEvents := w.Kernel.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunEpochs(4 + i)
	}
	b.StopTimer()
	b.ReportMetric(float64(w.Kernel.Steps()-startEvents)/float64(b.N), "kernel-events/epoch")
}

// Per-detector epoch costs for the new pluggable baselines; each is pinned
// in bench_baseline.json so an accidental allocation regression in a
// detector's hot path (tick, Handle) fails `make benchcmp`.
func BenchmarkSWIMEpoch(b *testing.B)          { benchDetectorEpoch(b, scenario.StackSWIM) }
func BenchmarkQueryResponseEpoch(b *testing.B) { benchDetectorEpoch(b, scenario.StackQueryResponse) }
func BenchmarkAllPairsEpoch(b *testing.B)      { benchDetectorEpoch(b, scenario.StackAllPairs) }

// BenchmarkFDSEpoch10k is BenchmarkFDSEpoch at 10,000 hosts on the per-host
// engine: one settle epoch outside the timer, then one steady-state epoch
// per iteration. It exists to anchor the sharded engine's numbers against
// the reference runtime at the same population; it is far too slow for the
// 20x gate invocation, so the Makefile runs it at -benchtime 1x (allocation
// counts stay deterministic — fixed seed, single-threaded kernel).
func BenchmarkFDSEpoch10k(b *testing.B) {
	w := scenario.Build(scenario.Config{Seed: 1, Nodes: 10000, FieldSide: 2000, LossProb: 0.1})
	w.RunEpochs(1)
	startEvents := w.Kernel.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunEpochs(2 + i)
	}
	b.StopTimer()
	b.ReportMetric(float64(w.Kernel.Steps()-startEvents)/float64(b.N), "kernel-events/epoch")
}

// BenchmarkFDSEpochParallel is the intra-replica parallelism speedup pair:
// a fixed 600-host, 8-epoch crash wave on the strip-partitioned engine
// (internal/par), run once per iteration at workers=1 and workers=4. The
// work is identical — the engine's results are bit-identical at every
// worker count (TestWorkerCountInvariance and the golden test pin the
// hash), asserted here via the message tallies — so on a >=4-core machine
// speedup = workers=1 ns/op ÷ workers=4 ns/op. On fewer cores the pair
// instead measures the coordination overhead of the idle worker pool.
// Tracing is off: the benchmark times the compute path, not trace-string
// formatting. The build runs outside the timer; only the epoch drain is
// measured.
func BenchmarkFDSEpochParallel(b *testing.B) {
	tallies := map[int][2]uint64{}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var sends, deliveries uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := par.Build(par.Config{
					Seed: 1, Nodes: 600, FieldSide: 1200, LossProb: 0.1,
					Workers: workers,
				})
				timing := cluster.DefaultTiming()
				e.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 6)
				b.StartTimer()
				e.RunEpochs(8)
				b.StopTimer()
				sends, deliveries = e.Sends(), e.Deliveries()
				b.StartTimer()
			}
			b.StopTimer()
			tallies[workers] = [2]uint64{sends, deliveries}
			b.ReportMetric(float64(workers), "workers")
		})
	}
	if tallies[1] != tallies[4] {
		b.Fatalf("tallies diverged: workers=1 %v workers=4 %v", tallies[1], tallies[4])
	}
}

// BenchmarkShardedEpoch measures the sharded engine (internal/shard) on the
// same 10,000-host field: build + one full epoch per iteration, 4 shards,
// workers=1 so the drain runs serially and allocs/op stays deterministic.
// Compare events/sec against BenchmarkFDSEpoch10k's kernel-events/epoch to
// see what the SoA engine buys at scale.
func BenchmarkShardedEpoch(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		cfg := scenario.ShardedCrashWave(
			scenario.Config{Seed: 1, Nodes: 10000, FieldSide: 2000, LossProb: 0.1},
			4, 1, 1, 0, 0)
		e := shard.Build(cfg)
		t0 := time.Now()
		res := e.Run()
		elapsed += time.Since(t0)
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/epoch")
	b.ReportMetric(float64(events)/elapsed.Seconds(), "events/sec")
}

// BenchmarkCodec measures the wire codec round trip for the largest
// realistic message (a 100-member digest).
func BenchmarkCodec(b *testing.B) {
	heard := make([]wire.NodeID, 100)
	for i := range heard {
		heard[i] = wire.NodeID(i + 1)
	}
	msg := &wire.Digest{NID: 1, CH: 2, Epoch: 7, Heard: heard}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.Encode(msg)
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecEncodeAppend measures the zero-allocation encode path the
// radio hot path uses: one reusable buffer across messages.
func BenchmarkCodecEncodeAppend(b *testing.B) {
	heard := make([]wire.NodeID, 100)
	for i := range heard {
		heard[i] = wire.NodeID(i + 1)
	}
	msg := &wire.Digest{NID: 1, CH: 2, Epoch: 7, Heard: heard}
	buf := make([]byte, 0, msg.WireSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.EncodeAppend(buf[:0], msg)
	}
	_ = buf
}

// BenchmarkRadioBroadcast measures medium throughput: one broadcast into a
// 50-neighbor cell, including delivery scheduling and decoding.
func BenchmarkRadioBroadcast(b *testing.B) {
	k := sim.New(1)
	m := radio.New(k, radio.Defaults(0.1))
	center := geo.Point{X: 0, Y: 0}
	hosts := make([]*benchReceiver, 51)
	for i := range hosts {
		pos := geo.UniformInDisk(k.Rand(), center, 90)
		if i == 0 {
			pos = center
		}
		hosts[i] = &benchReceiver{id: wire.NodeID(i + 1), pos: pos}
		m.Attach(hosts[i])
	}
	msg := &wire.Heartbeat{NID: 1, Epoch: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(1, msg)
		k.Run()
	}
}

// BenchmarkRadioBroadcastMetrics is BenchmarkRadioBroadcast with a live
// metrics registry attached to the medium. The instrumented counters are
// resolved once and incremented atomically, so this must report the same
// allocs/op as the uninstrumented benchmark (0 added allocations).
func BenchmarkRadioBroadcastMetrics(b *testing.B) {
	k := sim.New(1)
	reg := metrics.NewRegistry()
	m := radio.New(k, radio.Defaults(0.1), radio.WithMetrics(reg))
	center := geo.Point{X: 0, Y: 0}
	hosts := make([]*benchReceiver, 51)
	for i := range hosts {
		pos := geo.UniformInDisk(k.Rand(), center, 90)
		if i == 0 {
			pos = center
		}
		hosts[i] = &benchReceiver{id: wire.NodeID(i + 1), pos: pos}
		m.Attach(hosts[i])
	}
	msg := &wire.Heartbeat{NID: 1, Epoch: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(1, msg)
		k.Run()
	}
	b.StopTimer()
	if sent := m.Sent(wire.KindHeartbeat); sent != int64(b.N) {
		b.Fatalf("tx:heartbeat counter = %d, want %d", sent, b.N)
	}
}

// BenchmarkNeighborsQuery measures the scratch-slice neighborhood query
// (allocation-free once the buffer is warm) against a 50-neighbor cell.
func BenchmarkNeighborsQuery(b *testing.B) {
	k := sim.New(1)
	m := radio.New(k, radio.Defaults(0.1))
	center := geo.Point{X: 0, Y: 0}
	for i := 0; i < 51; i++ {
		pos := geo.UniformInDisk(k.Rand(), center, 90)
		if i == 0 {
			pos = center
		}
		m.Attach(&benchReceiver{id: wire.NodeID(i + 1), pos: pos})
	}
	buf := make([]wire.NodeID, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.NeighborsAppend(buf[:0], center, 1)
	}
	_ = buf
}

// benchReceiver is a no-op radio endpoint for throughput benchmarks.
type benchReceiver struct {
	id  wire.NodeID
	pos geo.Point
}

func (r *benchReceiver) ID() wire.NodeID                          { return r.id }
func (r *benchReceiver) Pos() geo.Point                           { return r.pos }
func (r *benchReceiver) Operational() bool                        { return true }
func (r *benchReceiver) Deliver(m wire.Message, from wire.NodeID) {}

// BenchmarkAnalyticVsSimAgreement cross-checks, per iteration, that the
// closed form and the paper's double sum agree at a random point — a
// micro-fidelity watchdog that also exercises the binomial machinery.
func BenchmarkAnalyticVsSimAgreement(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		n := 3 + rng.Intn(100)
		p := rng.Float64()
		closed := analysis.FalseDetection(n, p)
		sum := analysis.FalseDetectionPaperSum(n, p)
		diff := closed - sum
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(closed+sum+1e-300) && diff > 1e-15 {
			b.Fatalf("closed form and paper sum diverge at N=%d p=%v: %v vs %v", n, p, closed, sum)
		}
	}
}

// BenchmarkTimingHelpers keeps the epoch arithmetic on the profile radar.
func BenchmarkTimingHelpers(b *testing.B) {
	t := cluster.DefaultTiming()
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		sink += t.EpochStart(wire.Epoch(i % 1000))
	}
	_ = sink
}

// --- Ext. F: aggregation message sharing (paper Section 6) --------------------

// BenchmarkAggregation measures the in-network aggregation service: the
// extra transmissions it costs per epoch (the paper's "message sharing"
// claim: readings ride the FDS digests, so only one partial broadcast per
// cluster plus backbone relays) and the fraction of readings the global
// aggregate covers.
func BenchmarkAggregation(b *testing.B) {
	var extraMsgs, coverage float64
	for i := 0; i < b.N; i++ {
		w := scenario.Build(scenario.Config{
			Seed: int64(i + 1), Nodes: 80, FieldSide: 350,
			AggregateSampler: func(id wire.NodeID, e wire.Epoch) (float64, bool) {
				return float64(id), true
			},
		})
		w.RunEpochs(8)
		extraMsgs += float64(w.Medium.Sent(wire.KindAggregate)) / 8
		var ch wire.NodeID
		for _, id := range w.NodeIDs() {
			if w.Cluster(id).View().IsCH {
				ch = id
				break
			}
		}
		best := uint32(0)
		for e := wire.Epoch(4); e <= 7; e++ {
			if g, _ := w.Aggregate(ch).Global(e); g.Count > best {
				best = g.Count
			}
		}
		coverage += float64(best) / 80
	}
	n := float64(b.N)
	b.ReportMetric(extraMsgs/n, "aggregate-msgs/epoch")
	b.ReportMetric(coverage/n, "reading-coverage")
}

// --- Ext. G: sleep-mode power management (paper Section 6) --------------------

// BenchmarkSleep quantifies duty cycling: energy saved versus the always-on
// fleet, and the false-detection damage of naive (unannounced) sleeping
// versus the sleep-aware FDS.
func BenchmarkSleep(b *testing.B) {
	run := func(b *testing.B, mode string) (energy float64, falseSusp float64) {
		for i := 0; i < b.N; i++ {
			cfg := scenario.Config{Seed: int64(i + 1), Nodes: 60, FieldSide: 300}
			if mode != "awake" {
				scfg := sleep.DefaultConfig(cluster.DefaultTiming())
				scfg.Announce = mode == "announced"
				cfg.Sleep = &scfg
			}
			w := scenario.Build(cfg)
			w.RunEpochs(12)
			energy += w.TotalEnergySpent()
			falseSusp += float64(len(w.FalseSuspicions()))
		}
		n := float64(b.N)
		return energy / n, falseSusp / n
	}
	b.Run("always-awake", func(b *testing.B) {
		e, f := run(b, "awake")
		b.ReportMetric(e, "energy/run")
		b.ReportMetric(f, "false-suspicion-pairs")
	})
	b.Run("announced-sleep", func(b *testing.B) {
		e, f := run(b, "announced")
		b.ReportMetric(e, "energy/run")
		b.ReportMetric(f, "false-suspicion-pairs")
	})
	b.Run("naive-sleep", func(b *testing.B) {
		e, f := run(b, "naive")
		b.ReportMetric(e, "energy/run")
		b.ReportMetric(f, "false-suspicion-pairs")
	})
}
